// Simulator throughput: scalar sim::Simulator vs the levelized 64-lane
// sim::WordSimulator on address-generator netlists from the scaled suite.
// Items/sec are lane-cycles (one net-state update of one stimulus stream),
// so the reported rates are directly comparable: the word simulator should
// exceed the scalar one by well over 8x on any suite netlist.  These are
// host-performance numbers, not paper quantities.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>

#include "core/cntag.hpp"
#include "core/metrics.hpp"
#include "netlist/netlist.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"
#include "sim/word_simulator.hpp"

namespace {

using namespace addm;

/// A representative replay netlist: CntAG with flat decoders over a scaled
/// incremental trace — the largest-fanout generator family in the suite.
const netlist::Netlist& cntag_netlist(std::size_t dim) {
  static std::map<std::size_t, netlist::Netlist> cache;
  auto it = cache.find(dim);
  if (it == cache.end()) {
    const auto trace = seq::incremental({dim, dim});
    it = cache.emplace(dim, core::elaborate_cntag(trace, {})).first;
  }
  return it->second;
}

void drive_replay(sim::Simulator& s) {
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
}

void drive_replay(sim::WordSimulator& w) {
  w.set_all("reset", true);
  w.set_all("next", false);
  w.step();
  w.set_all("reset", false);
  w.set_all("next", true);
}

void BM_ScalarSim(benchmark::State& state) {
  const netlist::Netlist& nl = cntag_netlist(static_cast<std::size_t>(state.range(0)));
  sim::Simulator s(nl);
  s.enable_toggle_counting();
  drive_replay(s);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    s.run(256);
    cycles += 256;
  }
  benchmark::DoNotOptimize(s.toggles().data());
  state.SetItemsProcessed(cycles);  // one lane-cycle per cycle
}
BENCHMARK(BM_ScalarSim)->Arg(16)->Arg(32)->Arg(64);

void BM_WordSim(benchmark::State& state) {
  const netlist::Netlist& nl = cntag_netlist(static_cast<std::size_t>(state.range(0)));
  sim::WordSimulator w(nl);
  w.enable_toggle_counting();
  drive_replay(w);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    w.run(256);
    cycles += 256;
  }
  benchmark::DoNotOptimize(w.toggles().data());
  // 64 independent stimulus streams advance per step.
  state.SetItemsProcessed(cycles *
                          static_cast<std::int64_t>(sim::WordSimulator::kLanes));
}
BENCHMARK(BM_WordSim)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
