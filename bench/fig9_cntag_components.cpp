// Figure 9 reproduction: delay of the CntAG's components — sequence counter,
// row decoder, column decoder — across array sizes. The paper's observation:
// the counter stays nearly flat while the decoder delay grows with array
// size and comes to dominate.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Figure 9: CntAG component delays (ns)\n"
      "paper shape: counter ~flat; decoders grow and dominate at large N");
  std::printf("%10s %10s %14s %14s %10s\n", "array", "counter", "row decoder",
              "col decoder", "total");
  for (std::size_t dim = 16; dim <= 256; dim *= 2) {
    const auto trace = bench::fig8_read_trace(dim);
    const auto c = bench::cntag_components(trace, lib);
    std::printf("%4zux%-5zu %10.3f %14.3f %14.3f %10.3f\n", dim, dim, c.counter_ns,
                c.row_decoder_ns, c.col_decoder_ns, c.total_ns());
  }
  std::printf("\ndecoder growth check: col decoder at 256x256 vs 16x16: ");
  const auto small = bench::cntag_components(bench::fig8_read_trace(16), lib);
  const auto large = bench::cntag_components(bench::fig8_read_trace(256), lib);
  std::printf("%.2fx (paper: ~2.9x)\n\n", large.col_decoder_ns / small.col_decoder_ns);
}

void BM_ComponentAnalysis(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  const auto trace = bench::fig8_read_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(bench::cntag_components(trace, lib).total_ns());
}
BENCHMARK(BM_ComponentAnalysis)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
