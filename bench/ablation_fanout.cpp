// Ablation: sensitivity of generator delay to the buffer-insertion fanout
// bound. High-fanout control nets (the SRAG enable, counter bits feeding
// decoders) are where array size leaks into delay; this sweep shows how the
// repair policy moves both architectures.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Ablation: max-fanout bound vs generator delay (motion est read, 128x128)");
  const auto trace = bench::fig8_read_trace(128);
  std::printf("%12s %12s %14s %16s %16s\n", "max-fanout", "SRAG ns", "SRAG bufs",
              "CntAG-full ns", "CntAG bufs");
  for (int mf : {4, 8, 12, 16, 24, 32, 64}) {
    auto srag_build = core::build_srag_2d_for_trace(trace);
    const auto srag = core::measure_netlist(srag_build.netlist, lib, mf);

    auto cnt_nl = core::elaborate_cntag(trace, {});
    const auto cnt = core::measure_netlist(cnt_nl, lib, mf);

    std::printf("%12d %12.3f %14zu %16.3f %16zu\n", mf, srag.delay_ns,
                srag.buffers_added, cnt.delay_ns, cnt.buffers_added);
  }
  std::printf("\n(CntAG-full here is the whole-netlist critical path, not the paper's\n"
              "component-sum metric; the sweep isolates the buffering effect.)\n\n");
}

void BM_BufferInsertion(benchmark::State& state) {
  const auto trace = bench::fig8_read_trace(64);
  for (auto _ : state) {
    state.PauseTiming();
    auto build = core::build_srag_2d_for_trace(trace);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        tech::insert_buffers(build.netlist, static_cast<int>(state.range(0))).buffers_added);
  }
}
BENCHMARK(BM_BufferInsertion)->Arg(4)->Arg(12)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
