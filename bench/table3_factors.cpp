// Table 3 reproduction: average delay-reduction and area-increase factors of
// SRAG over CntAG for four example workloads, averaged over array sizes
// 16x16 .. 256x256 (the Figure 8-10 sweep):
//
//   example     paper delay reduction   paper area increase
//   dct                 1.7                    3.2
//   zoombytwo           1.7                    3.1
//   motion_est          1.8                    3.0
//   fifo                1.9                    2.4
#include <benchmark/benchmark.h>

#include <functional>

#include "common.hpp"

namespace {

using namespace addm;

struct Example {
  const char* name;
  double paper_delay_factor;
  double paper_area_factor;
  std::function<seq::AddressTrace(std::size_t)> make;
};

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  const std::vector<Example> examples = {
      {"dct", 1.7, 3.2,
       [](std::size_t d) { return seq::dct_block_column_read({d, d}, 8); }},
      {"zoombytwo", 1.7, 3.1,
       [](std::size_t d) { return seq::zoom_by_two_read({d, d}); }},
      {"motion_est", 1.8, 3.0, [](std::size_t d) { return bench::fig8_read_trace(d); }},
      {"fifo", 1.9, 2.4, [](std::size_t d) { return seq::incremental({d, d}); }},
  };

  bench::print_header(
      "Table 3: average delay-reduction / area-increase factors (SRAG vs CntAG)\n"
      "averaged over array sizes 16x16 .. 256x256");
  std::printf("%-12s %14s %8s %5s %14s %8s %5s\n", "example", "delay-reduction",
              "(paper)", "", "area-increase", "(paper)", "");
  for (const auto& ex : examples) {
    double delay_sum = 0, area_sum = 0;
    int count = 0;
    for (std::size_t dim = 16; dim <= 256; dim *= 2) {
      const auto trace = ex.make(dim);
      const auto srag = bench::srag_metrics(trace, lib);
      const auto cnt = bench::cntag_metrics(trace, lib);
      delay_sum += cnt.delay_ns / srag.delay_ns;
      area_sum += srag.area_units / cnt.area_units;
      ++count;
    }
    std::printf("%-12s %14.2f %8.1f %5s %14.2f %8.1f\n", ex.name, delay_sum / count,
                ex.paper_delay_factor, "", area_sum / count, ex.paper_area_factor);
  }
  std::printf("\n");
}

void BM_Table3FullSweepOneExample(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  for (auto _ : state) {
    const auto trace = seq::dct_block_column_read({32, 32}, 8);
    benchmark::DoNotOptimize(bench::srag_metrics(trace, lib).delay_ns);
    benchmark::DoNotOptimize(bench::cntag_metrics(trace, lib).delay_ns);
  }
}
BENCHMARK(BM_Table3FullSweepOneExample);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
