// Exploration-as-a-service throughput: the cost of N repeated exploration
// requests paid as N cold CLI-style runs (every invocation a fresh process
// image: empty memo table, every trace re-evaluated) versus N sequential
// requests against one warm addm_serve daemon (a real Server on a unix
// socket, driven by the real ServeClient) whose shared memo table pays the
// evaluation cost exactly once.
//
// The daemon is a latency optimization, never a result change: every
// served report is byte-compared against the cold run's report before any
// timing is reported.
//
// Emits BENCH_serve.json into the working directory: per-request seconds
// for both paths plus the steady-state speedup (cold cost / mean warm
// request cost after the first).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.hpp"
#include "core/batch_explorer.hpp"
#include "seq/workloads.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace addm;

constexpr std::size_t kSuiteScales = 2;  // 18 traces over 8x8 and 16x16
constexpr std::size_t kRequests = 6;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One cold CLI-style run: a fresh BatchExplorer (the per-process state a
/// new addm_explore invocation would build) exploring the whole suite.
std::string cold_run(double* seconds = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  core::BatchExplorer explorer{core::BatchOptions{}};
  const core::BatchResult result =
      explorer.run(seq::scaled_suite({8, 8}, kSuiteScales));
  const std::string report = core::batch_report_csv(result);
  if (seconds) *seconds = seconds_since(t0);
  return report;
}

/// A live daemon on a unix socket in the temp directory.
struct BenchDaemon {
  serve::ExploreService service;
  std::string socket_path;
  serve::Server server;
  std::thread thread;

  static serve::ServerOptions options_for(const std::string& path) {
    serve::ServerOptions vo;
    vo.unix_path = path;
    vo.quiet = true;
    return vo;
  }

  BenchDaemon()
      : service(serve::ServiceOptions{}),
        socket_path((std::filesystem::temp_directory_path() /
                     ("addm_serve_bench_" + std::to_string(getpid()) + ".sock"))
                        .string()),
        server(service, options_for(socket_path)) {
    std::string error;
    if (!server.start(error)) {
      std::fprintf(stderr, "bench daemon failed to start: %s\n", error.c_str());
      std::exit(1);
    }
    thread = std::thread([this] { server.run(); });
  }

  ~BenchDaemon() {
    server.request_stop();
    thread.join();
  }

  /// One request over a fresh connection (the addm_client pattern).
  std::string request(double* seconds = nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    serve::ServeClient client;
    std::string error;
    if (!client.connect_unix(socket_path, error)) {
      std::fprintf(stderr, "bench client: %s\n", error.c_str());
      std::exit(1);
    }
    serve::ExploreRequest req;
    req.suite_scales = kSuiteScales;
    serve::ServeClient::Result result;
    if (!client.explore(req, result, error) || !result.ok) {
      std::fprintf(stderr, "bench request failed: %s%s\n", error.c_str(),
                   result.error.message.c_str());
      std::exit(1);
    }
    if (seconds) *seconds = seconds_since(t0);
    return result.body;
  }
};

void print_table_and_json() {
  bench::print_header(
      "exploration-as-a-service: N cold CLI-style runs vs N sequential\n"
      "requests against one warm addm_serve daemon (byte-identical reports)");

  // Cold path: every request pays the full evaluation cost.
  std::vector<double> cold_seconds(kRequests);
  std::string cold_report;
  for (std::size_t i = 0; i < kRequests; ++i)
    cold_report = cold_run(&cold_seconds[i]);

  // Warm path: one daemon, N sequential requests; request 0 fills the memo
  // table, the rest are served from it.
  std::vector<double> warm_seconds(kRequests);
  {
    BenchDaemon daemon;
    for (std::size_t i = 0; i < kRequests; ++i) {
      const std::string body = daemon.request(&warm_seconds[i]);
      if (body != cold_report) {
        std::fprintf(stderr,
                     "FATAL: served report diverged from the cold run\n");
        std::exit(1);
      }
    }
  }

  std::printf("%-10s %14s %18s\n", "request", "cold-cli(s)", "warm-daemon(s)");
  double cold_total = 0.0, warm_steady = 0.0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    std::printf("%-10zu %14.3f %18.3f\n", i, cold_seconds[i], warm_seconds[i]);
    cold_total += cold_seconds[i];
    if (i > 0) warm_steady += warm_seconds[i];
  }
  const double cold_mean = cold_total / kRequests;
  const double warm_mean = warm_steady / (kRequests - 1);
  const double speedup = warm_mean > 0 ? cold_mean / warm_mean : 0.0;
  std::printf("\nmean cold %.3fs, mean warm (after first) %.4fs -> %.0fx\n\n",
              cold_mean, warm_mean, speedup);

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n");
  std::fprintf(f, "  \"suite_scales\": %zu,\n  \"requests\": %zu,\n",
               kSuiteScales, kRequests);
  std::fprintf(f, "  \"reports_byte_identical\": true,\n");
  std::fprintf(f, "  \"cold_seconds\": [");
  for (std::size_t i = 0; i < kRequests; ++i)
    std::fprintf(f, "%s%.6f", i ? ", " : "", cold_seconds[i]);
  std::fprintf(f, "],\n  \"warm_seconds\": [");
  for (std::size_t i = 0; i < kRequests; ++i)
    std::fprintf(f, "%s%.6f", i ? ", " : "", warm_seconds[i]);
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"mean_cold\": %.6f,\n  \"mean_warm_after_first\": %.6f,\n",
               cold_mean, warm_mean);
  std::fprintf(f, "  \"steady_state_speedup\": %.1f\n}\n", speedup);
  std::fclose(f);
  std::printf("wrote BENCH_serve.json (%zu requests per path)\n\n", kRequests);
}

void BM_ColdCliRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(cold_run());
}
BENCHMARK(BM_ColdCliRun)->Unit(benchmark::kMillisecond);

void BM_WarmDaemonRequest(benchmark::State& state) {
  static BenchDaemon* daemon = new BenchDaemon();  // warm across iterations
  daemon->request();                               // ensure the memo is hot
  for (auto _ : state) benchmark::DoNotOptimize(daemon->request());
}
BENCHMARK(BM_WarmDaemonRequest)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
