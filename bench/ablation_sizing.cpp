// Ablation: gate sizing (X1/X2/X4 drive strengths) on the paper's
// generators. Quantifies how much of the SRAG/CntAG delay gap survives a
// timing-driven sizing pass, and what it costs in area.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "tech/sizing.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Ablation: gate sizing on SRAG and CntAG (motion est read)\n"
      "delay/area before -> after load-based + critical-path sizing");
  std::printf("%10s %-7s %12s %12s %12s %12s %8s %8s\n", "array", "arch", "ns before",
              "ns after", "area before", "area after", "x2", "x4");
  for (std::size_t dim : {16u, 64u, 256u}) {
    const auto trace = bench::fig8_read_trace(dim);

    auto srag_build = core::build_srag_2d_for_trace(trace);
    const auto srag_before = core::measure_netlist(srag_build.netlist, lib);
    const auto srag_stats = tech::size_gates(srag_build.netlist, lib);
    const auto srag_after = tech::analyze_area(srag_build.netlist, lib);
    std::printf("%4zux%-5zu %-7s %12.3f %12.3f %12.0f %12.0f %8zu %8zu\n", dim, dim,
                "SRAG", srag_stats.delay_before_ns, srag_stats.delay_after_ns,
                srag_before.area_units, srag_after.total, srag_stats.upsized_x2,
                srag_stats.upsized_x4);

    auto cnt_nl = core::elaborate_cntag(trace, {});
    const auto cnt_before = core::measure_netlist(cnt_nl, lib);
    const auto cnt_stats = tech::size_gates(cnt_nl, lib);
    const auto cnt_after = tech::analyze_area(cnt_nl, lib);
    std::printf("%4zux%-5zu %-7s %12.3f %12.3f %12.0f %12.0f %8zu %8zu\n", dim, dim,
                "CntAG", cnt_stats.delay_before_ns, cnt_stats.delay_after_ns,
                cnt_before.area_units, cnt_after.total, cnt_stats.upsized_x2,
                cnt_stats.upsized_x4);
  }
  std::printf("\n(CntAG here is the full-netlist critical path; sizing shortens the\n"
              "decode chain's loaded stages but cannot remove its linear depth.)\n\n");
}

void BM_SizingPass(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  const auto trace = bench::fig8_read_trace(64);
  for (auto _ : state) {
    state.PauseTiming();
    auto build = core::build_srag_2d_for_trace(trace);
    tech::insert_buffers(build.netlist);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tech::size_gates(build.netlist, lib).delay_after_ns);
  }
}
BENCHMARK(BM_SizingPass);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
