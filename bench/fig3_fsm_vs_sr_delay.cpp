// Figure 3 reproduction: delay through the address generator (shift register
// vs symbolic state machine) for incremental address sequences of length
// N = 8..256.
//
// Paper reference points (0.18um, Design Compiler): shift register ~0.9-1.0ns
// nearly flat; symbolic FSM ~1.8-2.3ns, over twice the shift register.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Figure 3: address generator delay vs sequence length (incremental)\n"
      "paper shape: shift register flat ~1ns; symbolic FSM >2x slower");
  std::printf("%8s %18s %24s %8s\n", "N", "shift-reg delay/ns", "symbolic-FSM delay/ns",
              "ratio");
  for (std::size_t n = 8; n <= 256; n *= 2) {
    auto sr_nl = core::elaborate_srag(bench::incremental_srag_config(n));
    const auto sr = core::measure_netlist(sr_nl, lib);

    auto fsm_nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary,
                                                 /*flat=*/true);
    const auto fsm = core::measure_netlist(fsm_nl, lib);

    std::printf("%8zu %18.3f %24.3f %8.2f\n", n, sr.delay_ns, fsm.delay_ns,
                fsm.delay_ns / sr.delay_ns);
  }
  std::printf("\n");
}

void BM_ShiftRegisterElaborate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lib = tech::Library::generic_180nm();
  for (auto _ : state) {
    auto nl = core::elaborate_srag(bench::incremental_srag_config(n));
    benchmark::DoNotOptimize(core::measure_netlist(nl, lib));
  }
}
BENCHMARK(BM_ShiftRegisterElaborate)->Arg(64)->Arg(256);

void BM_SymbolicFsmSynthesize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lib = tech::Library::generic_180nm();
  for (auto _ : state) {
    auto nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary, true);
    benchmark::DoNotOptimize(core::measure_netlist(nl, lib));
  }
}
BENCHMARK(BM_SymbolicFsmSynthesize)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
