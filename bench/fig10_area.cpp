// Figure 10 reproduction: address-generator area, SRAG vs CntAG, read and
// write sequences, array sizes 16x16 .. 256x256.
//
// Paper reference points: SRAG grows to ~3x10^4 cell units at 256x256; CntAG
// stays near 1x10^4; "SRAG ... is also approximately three times larger in
// area". The paper argues this is acceptable because the generator is a
// small fraction of the total memory macro.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Figure 10: generator area vs array size (cell units)\n"
      "paper shape: SRAG ~3x CntAG; SRAG ~3e4 units at 256x256");
  std::printf("%10s %12s %12s %12s %12s %10s\n", "array", "SRAG(wr)", "CntAG(wr)",
              "SRAG(rd)", "CntAG(rd)", "rd-ratio");
  for (std::size_t dim = 16; dim <= 256; dim *= 2) {
    const auto write_trace = seq::incremental({dim, dim});
    const auto read_trace = bench::fig8_read_trace(dim);

    const auto srag_wr = bench::srag_metrics(write_trace, lib);
    const auto cnt_wr = bench::cntag_metrics(write_trace, lib);
    const auto srag_rd = bench::srag_metrics(read_trace, lib);
    const auto cnt_rd = bench::cntag_metrics(read_trace, lib);

    std::printf("%4zux%-5zu %12.0f %12.0f %12.0f %12.0f %10.2f\n", dim, dim,
                srag_wr.area_units, cnt_wr.area_units, srag_rd.area_units,
                cnt_rd.area_units, srag_rd.area_units / cnt_rd.area_units);
  }
  std::printf("\n");
}

void BM_SragArea(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  const auto trace = bench::fig8_read_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(bench::srag_metrics(trace, lib).area_units);
}
BENCHMARK(BM_SragArea)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
