// Extension experiment: shared-control 2-D SRAG (the paper's Section-7 area
// reduction: "reuse of control circuitry between the row and the column
// address sequences"). Compares independent vs shared composition across
// workloads and array sizes.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/shared_control.hpp"
#include "core/srag_mapper.hpp"

namespace {

using namespace addm;

const char* sharing_name(core::ControlSharing s) {
  switch (s) {
    case core::ControlSharing::None: return "none";
    case core::ControlSharing::ColumnEnable: return "enable";
    case core::ControlSharing::ColumnCycle: return "cycle";
    case core::ControlSharing::ColumnCycleScaled: return "cycle+cnt";
  }
  return "?";
}

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Extension: shared-control 2-D SRAG (paper Section 7 future work)\n"
      "row enable derived from column-generator events instead of a DivCnt");

  struct Case {
    const char* name;
    seq::AddressTrace trace;
  };
  for (std::size_t dim : {16u, 64u, 256u}) {
    seq::MotionEstimationParams p;
    p.img_width = p.img_height = dim;
    p.mb_width = p.mb_height = 8;
    p.m = 0;
    const Case cases[] = {
        {"fifo", seq::incremental({dim, dim})},
        {"motion_est", seq::motion_estimation_read(p)},
        {"zoom", seq::zoom_by_two_read({dim, dim})},
    };
    std::printf("array %zux%zu\n", dim, dim);
    std::printf("  %-12s %10s %12s %12s %10s %10s\n", "workload", "mode", "indep a",
                "shared a", "saved", "delay d");
    for (const auto& c : cases) {
      auto rm = core::map_sequence(c.trace.rows(),
                                   static_cast<std::uint32_t>(c.trace.geometry().height));
      auto cm = core::map_sequence(c.trace.cols(),
                                   static_cast<std::uint32_t>(c.trace.geometry().width));
      if (!rm.ok() || !cm.ok()) continue;

      netlist::Netlist indep_nl = core::elaborate_srag_2d(*rm.config, *cm.config);
      const auto indep = core::measure_netlist(indep_nl, lib);

      core::ControlSharing sharing;
      netlist::Netlist shared_nl =
          core::elaborate_srag_2d_shared(*rm.config, *cm.config, &sharing);
      const auto shared = core::measure_netlist(shared_nl, lib);

      std::printf("  %-12s %10s %12.0f %12.0f %9.1f%% %+9.3f\n", c.name,
                  sharing_name(sharing), indep.area_units, shared.area_units,
                  100.0 * (indep.area_units - shared.area_units) / indep.area_units,
                  shared.delay_ns - indep.delay_ns);
    }
  }
  std::printf("\n");
}

void BM_SharedElaboration(benchmark::State& state) {
  const auto trace = bench::fig8_read_trace(64);
  auto rm = core::map_sequence(trace.rows(), 64);
  auto cm = core::map_sequence(trace.cols(), 64);
  for (auto _ : state) {
    auto nl = core::elaborate_srag_2d_shared(*rm.config, *cm.config);
    benchmark::DoNotOptimize(nl.stats().num_cells);
  }
}
BENCHMARK(BM_SharedElaboration);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
