// Host-performance benchmark for the persistent evaluation cache: cost of a
// disk-warm batch run (load + deserialize vs. re-exploring), of flushing a
// cold run to disk, and of the raw entry serialization round trip.  These
// bound the win of sharing a cache directory across processes: a disk hit
// is profitable whenever it is cheaper than the evaluation it replaces.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/batch_explorer.hpp"
#include "core/eval_cache.hpp"
#include "core/fingerprint.hpp"
#include "seq/workloads.hpp"

namespace {

using namespace addm;

const std::vector<seq::AddressTrace>& suite() {
  static const std::vector<seq::AddressTrace> traces = seq::scaled_suite({8, 8}, 2);
  return traces;
}

std::string bench_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "addm_cache_bench" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

void BM_ColdRunWithFlush(benchmark::State& state) {
  core::BatchOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    opt.cache_dir = bench_dir("cold");  // empty dir: every trace evaluated + stored
    state.ResumeTiming();
    core::BatchExplorer explorer(opt);
    benchmark::DoNotOptimize(explorer.run(suite()).disk_entries_stored);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suite().size()));
}
BENCHMARK(BM_ColdRunWithFlush)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DiskWarmRun(benchmark::State& state) {
  core::BatchOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  opt.cache_dir = bench_dir("warm");
  core::BatchExplorer(opt).run(suite());  // populate once
  for (auto _ : state) {
    core::BatchExplorer explorer(opt);  // fresh memo table: all hits come from disk
    benchmark::DoNotOptimize(explorer.run(suite()).disk_hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suite().size()));
}
BENCHMARK(BM_DiskWarmRun)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_EntrySerializeParse(benchmark::State& state) {
  core::BatchOptions opt;
  opt.threads = 0;
  core::BatchExplorer explorer(opt);
  const core::BatchResult result = explorer.run(suite());
  core::EvalCacheEntry entry;
  entry.key = {result.entries[0].trace_hash,
               core::options_fingerprint(opt.explore)};
  entry.points = result.entries[0].points;
  entry.pareto = result.entries[0].pareto;
  for (auto _ : state) {
    const std::string text = core::serialize_eval_entry(entry);
    core::EvalCacheEntry back;
    benchmark::DoNotOptimize(core::parse_eval_entry(text, back));
  }
}
BENCHMARK(BM_EntrySerializeParse);

}  // namespace

BENCHMARK_MAIN();
