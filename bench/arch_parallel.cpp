// Single-trace intra-exploration parallelism: wall-clock of one
// explore_generators call across ExploreOptions::arch_threads values, on an
// FSM-heavy scaled_suite trace (the three symbolic-FSM elaborations dominate
// beyond ~1k states, so fanning candidates out pays off even for a lone
// trace that the batch layer's per-trace parallelism cannot touch).
// Real-time measured: the work moves onto pool threads.
#include <benchmark/benchmark.h>

#include <stdexcept>

#include "core/explorer.hpp"
#include "seq/workloads.hpp"

namespace {

using namespace addm;

// The largest incremental trace of a scaled suite: 1024 states at 32x32,
// which sits exactly at the default max_fsm_states cap — every FSM
// candidate elaborates, none is skipped.
const seq::AddressTrace& fsm_heavy_trace() {
  static const seq::AddressTrace trace = [] {
    for (const auto& t : seq::scaled_suite({32, 32}, 1))
      if (t.name().rfind("incremental", 0) == 0) return t;
    throw std::logic_error("scaled_suite lost its incremental trace");
  }();
  return trace;
}

void BM_ExploreSingleTrace(benchmark::State& state) {
  core::ExploreOptions opt;
  opt.arch_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::explore_generators(fsm_heavy_trace(), opt).size());
}
BENCHMARK(BM_ExploreSingleTrace)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The FSM candidates alone (the dominant cost): the ideal-speedup ceiling
// for the run above is bounded by the slowest single candidate.
void BM_ExploreFsmOnly(benchmark::State& state) {
  core::ExploreOptions opt;
  opt.archs = {"FSM-binary", "FSM-gray", "FSM-onehot"};
  opt.arch_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::explore_generators(fsm_heavy_trace(), opt).size());
}
BENCHMARK(BM_ExploreFsmOnly)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
