// Shared helpers for the reproduction benches: canonical circuit builders
// for the paper's experiments and fixed-width table printing.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cntag.hpp"
#include "core/metrics.hpp"
#include "core/srag_config.hpp"
#include "core/srag_elab.hpp"
#include "netlist/builder.hpp"
#include "seq/workloads.hpp"
#include "synth/counter.hpp"
#include "synth/decoder.hpp"
#include "synth/fsm.hpp"
#include "tech/library.hpp"

namespace addm::bench {

/// 1-D shift-register address generator for the incremental sequence
/// 0..n-1 (the Section-3 "shift register" solution: a token ring).
inline core::SragConfig incremental_srag_config(std::size_t n) {
  core::SragConfig cfg;
  cfg.registers.resize(1);
  cfg.registers[0].resize(n);
  for (std::size_t i = 0; i < n; ++i) cfg.registers[0][i] = static_cast<std::uint32_t>(i);
  cfg.div_count = 1;
  cfg.pass_count = static_cast<std::uint32_t>(n);
  cfg.num_select_lines = static_cast<std::uint32_t>(n);
  return cfg;
}

/// The Section-3 "symbolic state machine" for the same sequence: N states,
/// binary-encoded, flat-mapped select-line outputs.
inline netlist::Netlist incremental_fsm_netlist(std::size_t n, synth::FsmEncoding enc,
                                                bool flat) {
  synth::FsmSpec spec;
  spec.next_state.resize(n);
  spec.select_of_state.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    spec.next_state[i] = static_cast<std::uint32_t>((i + 1) % n);
    spec.select_of_state[i] = static_cast<std::uint32_t>(i);
  }
  spec.num_select_lines = n;

  netlist::Netlist nl;
  netlist::NetlistBuilder b(nl);
  const auto next = b.input("next");
  const auto reset = b.input("reset");
  const auto ports = synth::build_fsm(b, spec, next, reset, synth::FsmStyle{enc, flat});
  b.output_bus("sel", ports.select);
  return nl;
}

/// The motion-estimation read trace used for Figures 8-10: square image,
/// 8x8 macroblocks (16x16 images use 4 blocks), m=0 — see DESIGN.md.
inline seq::AddressTrace fig8_read_trace(std::size_t array_dim) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = array_dim;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  return seq::motion_estimation_read(p);
}

/// Figure-9 style component breakdown of a CntAG for `trace`, and the
/// paper's CntAG delay metric: "the total delay is the sum of the counter
/// delay and the worst of the row or the column decoder delay".
struct CntAgComponents {
  double counter_ns = 0.0;
  double row_decoder_ns = 0.0;
  double col_decoder_ns = 0.0;
  double total_ns() const {
    return counter_ns + std::max(row_decoder_ns, col_decoder_ns);
  }
};

inline CntAgComponents cntag_components(const seq::AddressTrace& trace,
                                        const tech::Library& lib,
                                        synth::DecoderStyle style =
                                            synth::DecoderStyle::SharedChain) {
  CntAgComponents c;
  {
    netlist::Netlist nl;
    netlist::NetlistBuilder b(nl);
    synth::CounterSpec spec;
    spec.bits = synth::bits_for(trace.length());
    spec.modulo = trace.length();
    spec.cascade_digit_bits = 4;
    const auto ports = synth::build_counter(b, spec, b.input("next"), b.input("reset"));
    b.output_bus("q", ports.q);
    c.counter_ns = core::measure_netlist(nl, lib).reg_to_reg_ns;
  }
  auto decoder_delay = [&](std::size_t lines) {
    netlist::Netlist nl;
    netlist::NetlistBuilder b(nl);
    const auto addr = b.input_bus("a", synth::bits_for(lines));
    b.output_bus("y", synth::build_decoder(b, addr, lines, netlist::kConst1, style));
    return core::measure_netlist(nl, lib).delay_ns;
  };
  c.row_decoder_ns = decoder_delay(trace.geometry().height);
  c.col_decoder_ns = decoder_delay(trace.geometry().width);
  return c;
}

/// SRAG delay/area for a 2-D trace via the standard measurement pipeline.
inline core::GeneratorMetrics srag_metrics(const seq::AddressTrace& trace,
                                           const tech::Library& lib) {
  auto build = core::build_srag_2d_for_trace(trace);
  return core::measure_netlist(build.netlist, lib);
}

/// CntAG area via the full netlist; delay via the paper's sum metric.
struct CntAgMetrics {
  double area_units = 0.0;
  double delay_ns = 0.0;
  std::size_t cells = 0;
};

inline CntAgMetrics cntag_metrics(const seq::AddressTrace& trace,
                                  const tech::Library& lib) {
  CntAgMetrics m;
  netlist::Netlist nl = core::elaborate_cntag(trace, {});
  const auto full = core::measure_netlist(nl, lib);
  m.area_units = full.area_units;
  m.cells = full.cells;
  m.delay_ns = cntag_components(trace, lib).total_ns();
  return m;
}

inline void print_header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace addm::bench
