// Figure 8 reproduction: address-generator delay, SRAG vs CntAG, for read
// (block-matching motion estimation, 8x8 macroblocks, m=0) and write
// (incremental) sequences over array sizes 16x16 .. 256x256.
//
// Metrics (see EXPERIMENTS.md): SRAG delay is the buffered netlist's critical
// path; CntAG delay follows the paper's own formula — counter delay plus the
// worst of the row/column decoder delays (Figure 9's caption).
//
// Paper reference points: SRAG ~0.8-1.1ns nearly flat; CntAG ~1.4ns at 16x16
// growing to ~2.5ns at 256x256; "SRAG is on average approximately twice as
// fast as the CntAG".
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Figure 8: generator delay vs array size (ns)\n"
      "paper shape: SRAG flat ~1ns; CntAG grows, decoder-dominated");
  std::printf("%10s %12s %12s %12s %12s %8s\n", "array", "SRAG(wr)", "CntAG(wr)",
              "SRAG(rd)", "CntAG(rd)", "rd-ratio");
  for (std::size_t dim = 16; dim <= 256; dim *= 2) {
    const auto write_trace = seq::incremental({dim, dim});
    const auto read_trace = bench::fig8_read_trace(dim);

    const auto srag_wr = bench::srag_metrics(write_trace, lib);
    const auto cnt_wr = bench::cntag_metrics(write_trace, lib);
    const auto srag_rd = bench::srag_metrics(read_trace, lib);
    const auto cnt_rd = bench::cntag_metrics(read_trace, lib);

    std::printf("%4zux%-5zu %12.3f %12.3f %12.3f %12.3f %8.2f\n", dim, dim,
                srag_wr.delay_ns, cnt_wr.delay_ns, srag_rd.delay_ns, cnt_rd.delay_ns,
                cnt_rd.delay_ns / srag_rd.delay_ns);
  }
  std::printf("\n");
}

void BM_SragPipeline(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto lib = tech::Library::generic_180nm();
  const auto trace = bench::fig8_read_trace(dim);
  for (auto _ : state) benchmark::DoNotOptimize(bench::srag_metrics(trace, lib).delay_ns);
}
BENCHMARK(BM_SragPipeline)->Arg(64);

void BM_CntAgPipeline(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto lib = tech::Library::generic_180nm();
  const auto trace = bench::fig8_read_trace(dim);
  for (auto _ : state) benchmark::DoNotOptimize(bench::cntag_metrics(trace, lib).delay_ns);
}
BENCHMARK(BM_CntAgPipeline)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
