// Extension experiment: the multi-counter SRAG (Section 4's proposed
// relaxation / Section 7 future work). Measures (a) how much of a mixed
// workload population each mapper variant covers, and (b) the hardware cost
// of the extra per-register counters on sequences both can map.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/multicounter.hpp"
#include "core/srag_mapper.hpp"

namespace {

using namespace addm;

// A population of row/column sequences drawn from workloads plus synthetic
// irregular-iteration patterns.
std::vector<std::pair<std::string, std::vector<std::uint32_t>>> population() {
  std::vector<std::pair<std::string, std::vector<std::uint32_t>>> seqs;
  for (std::size_t dim : {8u, 16u, 32u}) {
    const seq::ArrayGeometry g{dim, dim};
    seq::MotionEstimationParams p;
    p.img_width = p.img_height = dim;
    p.mb_width = p.mb_height = 4;
    p.m = 0;
    seqs.push_back({"me_rows_" + std::to_string(dim), seq::motion_estimation_read(p).rows()});
    seqs.push_back({"me_cols_" + std::to_string(dim), seq::motion_estimation_read(p).cols()});
    seqs.push_back({"zoom_rows_" + std::to_string(dim), seq::zoom_by_two_read(g).rows()});
    seqs.push_back({"dct_cols_" + std::to_string(dim),
                    seq::dct_block_column_read(g, 4).cols()});
  }
  // Unequal per-block revisit counts (the paper's own PassCnt counter-example
  // family): block A visited j times, block B visited k times.
  for (std::uint32_t j : {1u, 2u, 3u}) {
    for (std::uint32_t k : {1u, 2u}) {
      if (j == k) continue;
      std::vector<std::uint32_t> s;
      for (std::uint32_t r = 0; r < j; ++r)
        for (std::uint32_t a : {0u, 1u, 2u, 3u}) s.push_back(a);
      for (std::uint32_t r = 0; r < k; ++r)
        for (std::uint32_t a : {4u, 5u, 6u, 7u}) s.push_back(a);
      seqs.push_back({"revisit_" + std::to_string(j) + "_" + std::to_string(k), s});
    }
  }
  return seqs;
}

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Extension: multi-counter SRAG coverage and cost\n"
      "(per-register PassCnt lifts the uniform-pass-count restriction)");

  int single_ok = 0, multi_ok = 0, total = 0;
  std::printf("%-18s %12s %12s\n", "sequence", "single-cnt", "multi-cnt");
  for (const auto& [name, s] : population()) {
    const bool single = core::map_sequence(s).ok();
    const auto multi = core::map_sequence_multicounter(s);
    std::printf("%-18s %12s %12s\n", name.c_str(), single ? "maps" : "-",
                multi.ok() ? "maps" : "-");
    ++total;
    single_ok += single;
    multi_ok += multi.ok();
  }
  std::printf("coverage: single-counter %d/%d, multi-counter %d/%d\n\n", single_ok, total,
              multi_ok, total);

  // Hardware cost on the paper's own counter-example (multi-counter only).
  const std::vector<std::uint32_t> I{5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0,
                                     3, 7, 6, 2, 3, 7, 6, 2};
  const auto multi = core::map_sequence_multicounter(I, 8);
  if (multi.ok()) {
    auto nl = core::elaborate_multi_srag(*multi.config);
    const auto m = core::measure_netlist(nl, lib);
    std::printf("paper's PassCnt counter-example, multi-counter SRAG: %zu cells, "
                "area %.0f units, crit %.3f ns\n\n",
                m.cells, m.area_units, m.delay_ns);
  }
}

void BM_MultiMapper(benchmark::State& state) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 64;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto rows = seq::motion_estimation_read(p).rows();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::map_sequence_multicounter(rows, 64).ok());
}
BENCHMARK(BM_MultiMapper);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
