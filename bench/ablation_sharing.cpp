// Ablation: how much structural sharing (hash-consing) changes the area and
// delay of synthesized decode logic. This brackets the behaviour of the
// paper's 2002 synthesis flow, whose results sit between our "flat"
// (sharing-free) and "hashed" (fully shared) modes — it is the knob that
// explains the residual divergence in Figure 4 (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_fsm_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Ablation A: literal sharing in symbolic-FSM synthesis (incremental seq)");
  std::printf("%8s %14s %14s %12s %12s\n", "N", "flat area", "hashed area", "flat ns",
              "hashed ns");
  for (std::size_t n = 16; n <= 256; n *= 2) {
    auto flat_nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary, true);
    const auto flat = core::measure_netlist(flat_nl, lib);
    auto hash_nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary, false);
    const auto hashed = core::measure_netlist(hash_nl, lib);
    std::printf("%8zu %14.0f %14.0f %12.3f %12.3f\n", n, flat.area_units,
                hashed.area_units, flat.delay_ns, hashed.delay_ns);
  }
  std::printf("\n");
}

void print_decoder_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Ablation B: decoder construction style (area & delay, standalone decoder)");
  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "lines", "chain a", "balanced a",
              "flat a", "chain ns", "balanced ns", "flat ns");
  for (std::size_t lines = 16; lines <= 256; lines *= 2) {
    auto measure = [&](synth::DecoderStyle style) {
      netlist::Netlist nl;
      netlist::NetlistBuilder b(nl);
      const auto addr = b.input_bus("a", synth::bits_for(lines));
      b.output_bus("y", synth::build_decoder(b, addr, lines, netlist::kConst1, style));
      return core::measure_netlist(nl, lib);
    };
    const auto chain = measure(synth::DecoderStyle::SharedChain);
    const auto bal = measure(synth::DecoderStyle::SharedBalanced);
    const auto flat = measure(synth::DecoderStyle::Flat);
    std::printf("%8zu %12.0f %12.0f %12.0f %12.3f %12.3f %12.3f\n", lines,
                chain.area_units, bal.area_units, flat.area_units, chain.delay_ns,
                bal.delay_ns, flat.delay_ns);
  }
  std::printf("\ninsight: a balanced predecoded decoder (modern flow) closes part of the\n"
              "SRAG delay advantage; the 2002 chain style is what the paper measured.\n\n");
}

void print_cntag_style_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header("Ablation C: CntAG with 2002 chain vs modern predecoded decoders");
  std::printf("%10s %16s %18s %12s\n", "array", "CntAG-2002 ns", "CntAG-modern ns",
              "SRAG ns");
  for (std::size_t dim = 16; dim <= 256; dim *= 2) {
    const auto trace = bench::fig8_read_trace(dim);
    const auto chain =
        bench::cntag_components(trace, lib, synth::DecoderStyle::SharedChain);
    const auto bal =
        bench::cntag_components(trace, lib, synth::DecoderStyle::SharedBalanced);
    const auto srag = bench::srag_metrics(trace, lib);
    std::printf("%4zux%-5zu %16.3f %18.3f %12.3f\n", dim, dim, chain.total_ns(),
                bal.total_ns(), srag.delay_ns);
  }
  std::printf("\n");
}

void BM_DecoderConstruction(benchmark::State& state) {
  const auto style = static_cast<synth::DecoderStyle>(state.range(0));
  for (auto _ : state) {
    netlist::Netlist nl;
    netlist::NetlistBuilder b(nl);
    const auto addr = b.input_bus("a", 8);
    b.output_bus("y", synth::build_decoder(b, addr, 256, netlist::kConst1, style));
    benchmark::DoNotOptimize(nl.stats().num_cells);
  }
}
BENCHMARK(BM_DecoderConstruction)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_fsm_table();
  print_decoder_table();
  print_cntag_style_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
