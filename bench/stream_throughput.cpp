// Streaming-ingestion throughput: end-to-end cost of "trace file on disk ->
// gate-verified exploration report" through the materializing pipeline
// (read_trace_file + explore the full trace) versus the streaming one
// (read_trace_compressed_file folds the file into prefix + k x period +
// suffix in one pass, then candidates are evaluated on a single period —
// the ExploreOptions::compress_periodic path).
//
// Exploration and gate-level verification both scale with what they are
// fed, so on a million-access periodic trace the compressed path wins by
// the compression ratio on the O(n) stages; on non-power-of-two periods
// the index->address transform minimization is super-linear in the
// sequence length and the gap widens by another order of magnitude.
//
// Emits BENCH_stream.json into the working directory: one record per
// (trace, path) with seconds, access counts, and the stored footprint,
// plus the end-to-end speedup per trace.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/explorer.hpp"
#include "seq/periodicity.hpp"
#include "seq/stream_io.hpp"
#include "seq/trace_io.hpp"

namespace {

using namespace addm;

struct Run {
  std::string trace;
  std::string path;  // "materialize" | "stream+compress"
  std::size_t accesses = 0;
  std::size_t stored = 0;  // addresses held after ingestion
  double seconds = 0.0;
  std::size_t points = 0;
};

/// One raster pass over `g`, repeated until the trace holds `repeats`
/// passes — the canonical "same loop nest every frame" workload.
seq::AddressTrace periodic_raster(seq::ArrayGeometry g, std::size_t repeats,
                                  const std::string& name) {
  std::vector<std::uint32_t> a;
  a.reserve(g.size() * repeats);
  for (std::size_t r = 0; r < repeats; ++r)
    for (std::size_t i = 0; i < g.size(); ++i)
      a.push_back(static_cast<std::uint32_t>(i));
  return seq::AddressTrace(g, std::move(a), name);
}

core::ExploreOptions bench_options() {
  core::ExploreOptions opt;
  opt.verify_front = true;  // gate-level replay is part of the end-to-end cost
  return opt;
}

/// Materializing pipeline: parse the whole file into memory, explore the
/// full-length trace.
Run run_materialize(const std::string& file, const std::string& label) {
  const auto t0 = std::chrono::steady_clock::now();
  const seq::AddressTrace trace = seq::read_trace_file(file);
  const auto points = core::explore_generators(trace, bench_options());
  const auto t1 = std::chrono::steady_clock::now();
  return {label, "materialize", trace.length(), trace.length(),
          std::chrono::duration<double>(t1 - t0).count(), points.size()};
}

/// Streaming pipeline: single-pass chunked read folding into the
/// periodicity compressor (peak footprint is one period), then candidate
/// evaluation on a single period — what ExploreOptions::compress_periodic
/// does when handed the trace, minus ever holding the expansion.
Run run_stream_compress(const std::string& file, const std::string& label) {
  const auto t0 = std::chrono::steady_clock::now();
  seq::CompressedTrace ct = seq::read_trace_compressed_file(file);
  const std::size_t length = ct.length();
  const std::size_t stored = ct.stored();
  std::vector<core::DesignPoint> points;
  if (ct.pure() && ct.compressed()) {
    const seq::AddressTrace one_period(ct.geometry, std::move(ct.period), ct.name);
    points = core::explore_generators(one_period, bench_options());
  } else {
    points = core::explore_generators(ct.expand(), bench_options());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return {label, "stream+compress", length, stored,
          std::chrono::duration<double>(t1 - t0).count(), points.size()};
}

void print_table_and_json() {
  bench::print_header(
      "streaming ingestion + periodicity compression: file -> verified\n"
      "report, materializing vs single-pass compressed exploration");

  struct Workload {
    std::string label;
    seq::ArrayGeometry geometry;
    std::size_t repeats;
  };
  // raster-32x32-1m: the headline million-access trace (1024 x 1000).
  // raster-24x24-66k: non-power-of-two period, where the materializing
  // path's transform minimization turns super-linear.
  const std::vector<Workload> workloads = {
      {"raster-32x32-1m", {32, 32}, 1000},
      {"raster-24x24-66k", {24, 24}, 114},
  };

  std::printf("%-18s %10s %10s %14s %18s %9s\n", "trace", "accesses", "stored",
              "materialize(s)", "stream+compress(s)", "speedup");

  std::vector<Run> runs;
  std::vector<std::pair<std::string, double>> speedups;
  for (const auto& w : workloads) {
    const std::string file = w.label + ".trace";
    seq::write_trace_file(file, periodic_raster(w.geometry, w.repeats, w.label));
    const Run full = run_materialize(file, w.label);
    const Run comp = run_stream_compress(file, w.label);
    std::remove(file.c_str());
    const double speedup = comp.seconds > 0 ? full.seconds / comp.seconds : 0.0;
    std::printf("%-18s %10zu %10zu %14.3f %18.3f %8.1fx\n", w.label.c_str(),
                full.accesses, comp.stored, full.seconds, comp.seconds, speedup);
    runs.push_back(full);
    runs.push_back(comp);
    speedups.emplace_back(w.label, speedup);
  }
  std::printf("\n");

  // Deterministic-schema trajectory record (values are machine-dependent
  // timings; the schema and row order are stable).
  std::FILE* f = std::fopen("BENCH_stream.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"stream_throughput\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(f,
                 "    {\"trace\": \"%s\", \"path\": \"%s\", \"accesses\": %zu, "
                 "\"stored\": %zu, \"seconds\": %.6f, \"points\": %zu}%s\n",
                 r.trace.c_str(), r.path.c_str(), r.accesses, r.stored, r.seconds,
                 r.points, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  for (std::size_t i = 0; i < speedups.size(); ++i)
    std::fprintf(f, "    {\"trace\": \"%s\", \"end_to_end\": %.1f}%s\n",
                 speedups[i].first.c_str(), speedups[i].second,
                 i + 1 < speedups.size() ? "," : "");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_stream.json (%zu runs)\n\n", runs.size());
}

/// Shared fixture file for the registered benchmarks: one raster pass of
/// 32x32, repeated `repeats` times.
std::string bench_trace_file(std::size_t repeats) {
  const std::string file = "stream_bench_" + std::to_string(repeats) + ".trace";
  std::ifstream probe(file);
  if (!probe.good())
    seq::write_trace_file(file, periodic_raster({32, 32}, repeats, "loop"));
  return file;
}

void BM_MaterializingEndToEnd(benchmark::State& state) {
  const auto repeats = static_cast<std::size_t>(state.range(0));
  const std::string file = bench_trace_file(repeats);
  for (auto _ : state) benchmark::DoNotOptimize(run_materialize(file, "loop"));
  state.SetComplexityN(static_cast<std::int64_t>(repeats * 1024));
}
BENCHMARK(BM_MaterializingEndToEnd)->RangeMultiplier(2)->Range(64, 256)->Complexity();

void BM_StreamingCompressedEndToEnd(benchmark::State& state) {
  const auto repeats = static_cast<std::size_t>(state.range(0));
  const std::string file = bench_trace_file(repeats);
  for (auto _ : state) benchmark::DoNotOptimize(run_stream_compress(file, "loop"));
  state.SetComplexityN(static_cast<std::int64_t>(repeats * 1024));
}
BENCHMARK(BM_StreamingCompressedEndToEnd)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_table_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  for (std::size_t repeats : {64u, 128u, 256u})
    std::remove(("stream_bench_" + std::to_string(repeats) + ".trace").c_str());
  return 0;
}
