// Table 1 reproduction: LinAS / RowAS / ColAS for new_img in the block
// matching motion estimation algorithm (Figure 7) with img 4x4, mb 2x2, m=0.
// This is an exact check: the printed rows must equal the paper's verbatim.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common.hpp"
#include "seq/analysis.hpp"

namespace {

using namespace addm;

void print_row(const char* name, const std::vector<std::uint32_t>& v) {
  std::printf("%-6s", name);
  for (std::size_t i = 0; i < v.size(); ++i) std::printf("%s%u", i ? "," : " ", v[i]);
  std::printf("\n");
}

bool check(const char* name, const std::vector<std::uint32_t>& got,
           const std::vector<std::uint32_t>& paper) {
  if (got == paper) {
    std::printf("  %-6s matches the paper exactly\n", name);
    return true;
  }
  std::printf("  %-6s MISMATCH vs the paper!\n", name);
  return false;
}

int run() {
  bench::print_header(
      "Table 1: address sequences for new_img (4x4 image, 2x2 macroblocks, m=0)");
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 4;
  p.mb_width = p.mb_height = 2;
  p.m = 0;
  const auto trace = seq::motion_estimation_read(p);

  print_row("LinAS", trace.linear());
  print_row("RowAS", trace.rows());
  print_row("ColAS", trace.cols());
  std::printf("\n");

  bool ok = true;
  ok &= check("LinAS", trace.linear(),
              {0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15});
  ok &= check("RowAS", trace.rows(), {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3});
  ok &= check("ColAS", trace.cols(), {0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3});
  std::printf("\n");
  return ok ? 0 : 1;
}

void BM_TraceGeneration(benchmark::State& state) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = static_cast<std::size_t>(state.range(0));
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(seq::motion_estimation_read(p).length());
}
BENCHMARK(BM_TraceGeneration)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
