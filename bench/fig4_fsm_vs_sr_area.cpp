// Figure 4 reproduction: area of the address generator (shift register vs
// symbolic state machine) for incremental sequences, N = 8..256.
//
// Paper reference points (0.18um, Design Compiler): both grow roughly
// linearly; at N=256 the FSM is ~11k cell units and the shift register ~12k
// (about 10% larger). Our flat and hashed synthesis modes bracket the
// sharing Design Compiler found; see EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Figure 4: address generator area vs sequence length (incremental)\n"
      "paper shape: both linear-ish; shift register ~1.1x the FSM at N=256");
  std::printf("%8s %14s %16s %18s %12s %12s\n", "N", "shift-reg", "FSM(flat)",
              "FSM(hashed)", "SR/FSMflat", "SR/FSMhash");
  for (std::size_t n = 8; n <= 256; n *= 2) {
    auto sr_nl = core::elaborate_srag(bench::incremental_srag_config(n));
    const auto sr = core::measure_netlist(sr_nl, lib);

    auto flat_nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary, true);
    const auto flat = core::measure_netlist(flat_nl, lib);

    auto hash_nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary, false);
    const auto hashed = core::measure_netlist(hash_nl, lib);

    std::printf("%8zu %14.0f %16.0f %18.0f %12.2f %12.2f\n", n, sr.area_units,
                flat.area_units, hashed.area_units, sr.area_units / flat.area_units,
                sr.area_units / hashed.area_units);
  }
  std::printf("\n");
}

void BM_AreaAnalysis(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  auto nl = core::elaborate_srag(
      bench::incremental_srag_config(static_cast<std::size_t>(state.range(0))));
  tech::insert_buffers(nl);
  for (auto _ : state) benchmark::DoNotOptimize(tech::analyze_area(nl, lib));
}
BENCHMARK(BM_AreaAnalysis)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
