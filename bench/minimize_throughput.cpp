// Minimizer-throughput comparison: wall-clock of full FSM cover synthesis
// (row/column selects + next-state logic, the explorer's FSM elaboration
// workload) under each two-level minimizer, across scaled_suite-style
// workload sizes.  The Espresso path's cost scales with cube count, so it
// pulls ahead of the dense ISOP recursion exactly where the paper's
// Section-3 synthesis times blow up: large irregular traces (zigzag,
// strided).  The exact Quine-McCluskey backend is included at small sizes
// as the quality baseline.
//
// Emits BENCH_minimize.json (first BENCH_* trajectory file, see
// ROADMAP.md) into the working directory: one record per
// (trace, minimizer) with seconds and mapped cell count.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "logic/minimize.hpp"

namespace {

using namespace addm;

struct Run {
  std::string trace;
  std::size_t states = 0;
  std::string algo;
  double seconds = 0.0;
  std::size_t cells = 0;
};

/// Synthesizes the 2-D FSM generator for `trace` (binary encoding, flat
/// mapping) with minimizer `mo`, timing only cover synthesis + mapping.
double build_fsm_2d(const seq::AddressTrace& trace, const logic::MinimizeOptions& mo,
                    std::size_t* cells) {
  const std::size_t len = trace.length();
  synth::FsmSpec row_spec;
  row_spec.next_state.resize(len);
  for (std::size_t i = 0; i < len; ++i)
    row_spec.next_state[i] = static_cast<std::uint32_t>((i + 1) % len);
  row_spec.select_of_state = trace.rows();
  row_spec.num_select_lines = trace.geometry().height;
  synth::FsmSpec col_spec = row_spec;
  col_spec.select_of_state = trace.cols();
  col_spec.num_select_lines = trace.geometry().width;

  netlist::Netlist nl;
  netlist::NetlistBuilder b(nl);
  const auto next = b.input("next");
  const auto reset = b.input("reset");
  const synth::FsmStyle style{synth::FsmEncoding::Binary, true, mo};
  const auto t0 = std::chrono::steady_clock::now();
  const auto rp = synth::build_fsm(b, row_spec, next, reset, style);
  const auto cp = synth::build_fsm(b, col_spec, next, reset, style);
  const auto t1 = std::chrono::steady_clock::now();
  b.output_bus("rs", rp.select);
  b.output_bus("cs", cp.select);
  if (cells) *cells = nl.stats().num_cells;
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<seq::AddressTrace> workloads() {
  std::vector<seq::AddressTrace> out;
  for (std::size_t dim : {8u, 16u, 32u, 64u}) {
    out.push_back(seq::zigzag({dim, dim}));
    out.push_back(seq::strided({dim, dim}, 3));
    out.push_back(seq::incremental({dim, dim}));
  }
  return out;
}

void print_table_and_json() {
  bench::print_header(
      "minimize() throughput: QMC vs ISOP vs Espresso on FSM synthesis\n"
      "full 2-D FSM cover synthesis + mapping per trace; exact only at\n"
      "sizes where branch-and-bound stays tractable");
  std::printf("%-22s %8s %12s %12s %12s %10s\n", "trace", "states", "exact (s)",
              "isop (s)", "espresso (s)", "cells");

  logic::MinimizeOptions exact_opt;
  exact_opt.algo = logic::MinimizerAlgo::Exact;
  logic::MinimizeOptions isop_opt;  // default
  logic::MinimizeOptions esp_opt;
  esp_opt.algo = logic::MinimizerAlgo::Espresso;

  std::vector<Run> runs;
  for (const auto& trace : workloads()) {
    std::size_t cells = 0;
    double exact_s = -1.0;
    if (trace.length() <= 64) {
      exact_s = build_fsm_2d(trace, exact_opt, &cells);
      runs.push_back({trace.name(), trace.length(), "exact", exact_s, cells});
    }
    const double isop_s = build_fsm_2d(trace, isop_opt, &cells);
    runs.push_back({trace.name(), trace.length(), "isop", isop_s, cells});
    const double esp_s = build_fsm_2d(trace, esp_opt, &cells);
    runs.push_back({trace.name(), trace.length(), "espresso", esp_s, cells});
    if (exact_s >= 0)
      std::printf("%-22s %8zu %12.4f %12.4f %12.4f %10zu\n", trace.name().c_str(),
                  trace.length(), exact_s, isop_s, esp_s, cells);
    else
      std::printf("%-22s %8zu %12s %12.4f %12.4f %10zu\n", trace.name().c_str(),
                  trace.length(), "-", isop_s, esp_s, cells);
  }
  std::printf("\n");

  // Deterministic-schema trajectory record (values are machine-dependent
  // timings; the schema and row order are stable).
  std::FILE* f = std::fopen("BENCH_minimize.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"minimize_throughput\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(f,
                 "    {\"trace\": \"%s\", \"states\": %zu, \"minimizer\": \"%s\", "
                 "\"seconds\": %.6f, \"cells\": %zu}%s\n",
                 r.trace.c_str(), r.states, r.algo.c_str(), r.seconds, r.cells,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_minimize.json (%zu runs)\n\n", runs.size());
}

void BM_FsmCoversIsop(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto trace = seq::zigzag({dim, dim});
  for (auto _ : state) {
    std::size_t cells = 0;
    benchmark::DoNotOptimize(build_fsm_2d(trace, {}, &cells));
  }
  state.SetComplexityN(static_cast<std::int64_t>(trace.length()));
}
BENCHMARK(BM_FsmCoversIsop)->RangeMultiplier(2)->Range(8, 32)->Complexity();

void BM_FsmCoversEspresso(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto trace = seq::zigzag({dim, dim});
  logic::MinimizeOptions mo;
  mo.algo = logic::MinimizerAlgo::Espresso;
  for (auto _ : state) {
    std::size_t cells = 0;
    benchmark::DoNotOptimize(build_fsm_2d(trace, mo, &cells));
  }
  state.SetComplexityN(static_cast<std::int64_t>(trace.length()));
}
BENCHMARK(BM_FsmCoversEspresso)->RangeMultiplier(2)->Range(8, 32)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_table_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
