// Extension experiment: banked/distributed ADDM (paper Section 7: "the
// interconnect and routing costs should also be considered"). Sweeps the
// banking degree for a fixed array and reports the trade: shorter worst-case
// select lines (routing/capacitance win) versus replicated select bundles
// and per-bank generator overhead.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "memory/banked_addm.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  const seq::ArrayGeometry g{256, 256};
  bench::print_header(
      "Extension: banked ADDM interconnect/generator trade (256x256 array)");
  std::printf("%8s %14s %14s %18s %18s\n", "banks", "select wires", "max line",
              "generator area", "generator ns");
  const auto mono = memory::BankedAddm::monolithic_cost(g);
  for (std::size_t banks : {1u, 2u, 4u, 8u, 16u}) {
    memory::BankedAddm mem(g, banks);
    const auto cost = mem.interconnect_cost();

    // Per-bank column generators: each bank scans its own column range, so
    // the column SRAG ring shrinks to width/banks stages; the row ring is
    // shared across banks. Model the generator side as row ring + banks *
    // bank-column rings (FIFO access).
    double gen_area = 0.0, gen_delay = 0.0;
    {
      const seq::ArrayGeometry bank_geom = mem.bank_geometry();
      auto col_cfg = bench::incremental_srag_config(bank_geom.width);
      auto row_cfg = bench::incremental_srag_config(g.height);
      netlist::Netlist nl;
      netlist::NetlistBuilder b(nl);
      const auto next = b.input("next");
      const auto reset = b.input("reset");
      const auto row = core::build_srag(b, row_cfg, next, reset);
      b.output_bus("rs", row.select);
      for (std::size_t i = 0; i < banks; ++i) {
        const auto col = core::build_srag(b, col_cfg, next, reset);
        b.output_bus("cs" + std::to_string(i), col.select);
      }
      const auto m = core::measure_netlist(nl, lib);
      gen_area = m.area_units;
      gen_delay = m.delay_ns;
    }

    std::printf("%8zu %14zu %14.0f %18.0f %18.3f\n", banks, cost.select_wires,
                cost.max_line_length_units, gen_area, gen_delay);
  }
  std::printf("monolithic reference: %zu wires, max line %.0f\n\n", mono.select_wires,
              mono.max_line_length_units);
}

void BM_BankedAccess(benchmark::State& state) {
  const seq::ArrayGeometry g{64, 64};
  memory::BankedAddm mem(g, static_cast<std::size_t>(state.range(0)));
  const auto bg = mem.bank_geometry();
  std::vector<std::uint8_t> bank(mem.num_banks(), 0), rs(bg.height, 0), cs(bg.width, 0);
  bank[0] = rs[3] = cs[5] = 1;
  for (auto _ : state) {
    mem.write(bank, rs, cs, 42);
    benchmark::DoNotOptimize(mem.read(bank, rs, cs));
  }
}
BENCHMARK(BM_BankedAccess)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
