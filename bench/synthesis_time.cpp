// Section-3 synthesis-time reproduction: the paper reports that synthesizing
// the N=256 symbolic state machine took over 6 hours on a SUN Ultra-5 while
// the shift-register solution took 36 minutes (a ~10x gap that widens with
// N). We reproduce the *trend*: wall-clock time of our FSM synthesis
// (state table -> per-output ISOP minimization -> mapping) against
// shift-register construction, as a function of N.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common.hpp"

namespace {

using namespace addm;

double seconds_of(void (*fn)(std::size_t), std::size_t n) {
  const auto t0 = std::chrono::steady_clock::now();
  fn(n);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void build_sr(std::size_t n) {
  auto nl = core::elaborate_srag(bench::incremental_srag_config(n));
  benchmark::DoNotOptimize(nl.stats().num_cells);
}

void build_fsm(std::size_t n) {
  auto nl = bench::incremental_fsm_netlist(n, synth::FsmEncoding::Binary, true);
  benchmark::DoNotOptimize(nl.stats().num_cells);
}

void print_table() {
  bench::print_header(
      "Section 3: synthesis wall-time, shift register vs symbolic FSM\n"
      "paper: N=256 FSM took >6h vs 36min for the shift register (>10x),\n"
      "and the gap grows with N; we reproduce the trend, not the hours");
  std::printf("%8s %16s %16s %10s\n", "N", "shift-reg (s)", "FSM synth (s)", "ratio");
  for (std::size_t n = 8; n <= 512; n *= 2) {
    const double sr = seconds_of(build_sr, n);
    const double fsm = seconds_of(build_fsm, n);
    std::printf("%8zu %16.4f %16.4f %10.1f\n", n, sr, fsm, fsm / (sr > 0 ? sr : 1e-9));
  }
  std::printf("\n");
}

void BM_FsmSynthesis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) build_fsm(n);
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FsmSynthesis)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_ShiftRegisterConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) build_sr(n);
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShiftRegisterConstruction)->RangeMultiplier(2)->Range(16, 512)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
