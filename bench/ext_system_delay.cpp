// Extension experiment: overall memory-access delay including the cell
// array — the measurement the paper could not make ("We have not
// demonstrated the impact of delay reduction ... on the overall memory
// access delay due to lack of data for the memory cell array", Section 7).
//
// Two complete gate-level systems over the same single-bit cell array:
//  * ADDM system:        SRAG pair -> RS/CS -> ADDM array (no decoders)
//  * conventional system: CntAG (binary address) -> in-macro decoders -> array
// Both run the raster access pattern; we report the full critical path and
// area, i.e. how much of the generator-level delay advantage survives once
// the array is attached.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/srag_mapper.hpp"
#include "memory/array_netlist.hpp"

namespace {

using namespace addm;

netlist::Netlist addm_system(std::size_t dim) {
  const auto trace = seq::incremental({dim, dim});
  auto rm = core::map_sequence(trace.rows(), static_cast<std::uint32_t>(dim));
  auto cm = core::map_sequence(trace.cols(), static_cast<std::uint32_t>(dim));
  netlist::Netlist nl;
  netlist::NetlistBuilder b(nl);
  const auto next = b.input("next");
  const auto reset = b.input("reset");
  const auto din = b.input("din");
  const auto we = b.input("we");
  const auto row = core::build_srag(b, *rm.config, next, reset);
  const auto col = core::build_srag(b, *cm.config, next, reset);
  const auto array =
      memory::build_addm_array(b, {dim, dim}, row.select, col.select, din, we);
  b.output("dout", array.dout);
  return nl;
}

netlist::Netlist conventional_system(std::size_t dim) {
  const auto trace = seq::incremental({dim, dim});
  core::CntAgOptions opt;
  opt.include_decoders = false;  // decode happens inside the macro
  netlist::Netlist nl;
  netlist::NetlistBuilder b(nl);
  const auto next = b.input("next");
  const auto reset = b.input("reset");
  const auto din = b.input("din");
  const auto we = b.input("we");
  const auto gen = core::build_cntag(b, trace, next, reset, opt);
  const auto array = memory::build_decoded_array(b, {dim, dim}, gen.row_addr,
                                                 gen.col_addr, din, we,
                                                 synth::DecoderStyle::SharedChain);
  b.output("dout", array.dout);
  return nl;
}

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Extension: full-system access delay (generator + decode + cell array)\n"
      "the Section-7 measurement the paper lacked array data for");
  std::printf("%8s %16s %16s %10s %14s %14s\n", "array", "ADDM+SRAG ns",
              "conv+CntAG ns", "ratio", "ADDM area", "conv area");
  for (std::size_t dim : {8u, 16u, 32u}) {
    auto a = addm_system(dim);
    const auto am = core::measure_netlist(a, lib);
    auto c = conventional_system(dim);
    const auto cm = core::measure_netlist(c, lib);
    std::printf("%4zux%-4zu %16.3f %16.3f %10.2f %14.0f %14.0f\n", dim, dim, am.delay_ns,
                cm.delay_ns, cm.delay_ns / am.delay_ns, am.area_units, cm.area_units);
  }
  std::printf("\n(the cell array and its wired-OR read tree are identical in both\n"
              "systems; the remaining delta is pure addressing-path difference.)\n\n");
}

void BM_FullSystemSta(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  auto nl = addm_system(16);
  tech::insert_buffers(nl);
  for (auto _ : state)
    benchmark::DoNotOptimize(tech::analyze_timing(nl, lib).critical_path_ns);
}
BENCHMARK(BM_FullSystemSta);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
