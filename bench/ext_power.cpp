// Extension experiment: activity-based dynamic power of SRAG vs CntAG (the
// paper's Section 7 expects decoder decoupling to reduce power but defers
// the study). We simulate both generators through a full pass of the
// motion-estimation read sequence, count per-net toggles, and apply the
// library's energy model at each generator's own critical-path clock period.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "sim/simulator.hpp"
#include "tech/power.hpp"

namespace {

using namespace addm;

struct PowerRow {
  tech::PowerReport report;
  double clock_ns;
};

PowerRow simulate_power(netlist::Netlist& nl, double clock_ns, std::size_t cycles) {
  sim::Simulator s(nl);
  s.enable_toggle_counting();
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  s.run(cycles);
  const auto lib = tech::Library::generic_180nm();
  return {tech::estimate_power(nl, lib, s.toggles(), clock_ns * static_cast<double>(cycles)),
          clock_ns};
}

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Extension: dynamic power, SRAG vs CntAG (motion est read, full pass)\n"
      "paper Section 7: decoder decoupling is expected to reduce power");
  std::printf("%10s %14s %14s %14s %14s %9s\n", "array", "SRAG mW", "CntAG mW",
              "SRAG pJ/acc", "CntAG pJ/acc", "ratio");
  for (std::size_t dim = 16; dim <= 64; dim *= 2) {
    const auto trace = bench::fig8_read_trace(dim);
    const std::size_t cycles = trace.length();

    auto srag_build = core::build_srag_2d_for_trace(trace);
    const double srag_clk = core::measure_netlist(srag_build.netlist, lib).delay_ns;
    auto srag = simulate_power(srag_build.netlist, srag_clk, cycles);

    auto cnt_nl = core::elaborate_cntag(trace, {});
    const double cnt_clk = bench::cntag_metrics(trace, lib).delay_ns;
    tech::insert_buffers(cnt_nl);
    auto cnt = simulate_power(cnt_nl, cnt_clk, cycles);

    const double srag_pj = srag.report.total_energy_pj / static_cast<double>(cycles);
    const double cnt_pj = cnt.report.total_energy_pj / static_cast<double>(cycles);
    std::printf("%4zux%-5zu %14.3f %14.3f %14.3f %14.3f %9.2f\n", dim, dim,
                srag.report.avg_power_mw, cnt.report.avg_power_mw, srag_pj, cnt_pj,
                cnt_pj / srag_pj);
  }
  std::printf("\n(energy per access: SRAG toggles only the token edge plus its control\n"
              "counters; CntAG toggles counter bits, transform and decoder cones.)\n\n");
}

void BM_PowerSimulation(benchmark::State& state) {
  const auto trace = bench::fig8_read_trace(16);
  auto build = core::build_srag_2d_for_trace(trace);
  for (auto _ : state) {
    auto nl = build.netlist;  // fresh copy
    benchmark::DoNotOptimize(simulate_power(nl, 1.0, trace.length()).report.total_toggles);
  }
}
BENCHMARK(BM_PowerSimulation);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
