// Ablation: state/select encodings for ADDM address generation.
//
// Section 4 of the paper claims two-hot encoding (one-hot per dimension,
// decoded for free by the 2-D cell array) "takes up far less area than
// one-hot encoding" (SFM style, one flip-flop per cell) while incurring no
// delay penalty. This bench quantifies that claim, plus binary/gray/one-hot
// symbolic FSM encodings for context.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/sfm.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Ablation: encoding cost for the incremental sequence over an NxN array\n"
      "two-hot = SRAG row+col rings; one-hot = SFM-style ring over all cells");
  std::printf("%10s %14s %14s %14s %14s\n", "array", "two-hot a", "one-hot a",
              "two-hot ns", "one-hot ns");
  for (std::size_t dim = 8; dim <= 64; dim *= 2) {
    const auto trace = seq::incremental({dim, dim});
    auto two_hot_build = core::build_srag_2d_for_trace(trace);
    const auto two_hot = core::measure_netlist(two_hot_build.netlist, lib);

    // One-hot over the whole array: a single token ring with dim*dim stages
    // (the encoding SFM uses for its pointers).
    core::SragConfig one_hot_cfg = bench::incremental_srag_config(dim * dim);
    auto one_hot_nl = core::elaborate_srag(one_hot_cfg);
    const auto one_hot = core::measure_netlist(one_hot_nl, lib);

    std::printf("%4zux%-5zu %14.0f %14.0f %14.3f %14.3f\n", dim, dim,
                two_hot.area_units, one_hot.area_units, two_hot.delay_ns,
                one_hot.delay_ns);
  }
  std::printf("\n");

  bench::print_header(
      "Context: symbolic FSM encodings for the incremental sequence (1-D, N lines)");
  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "N", "binary a", "gray a",
              "onehot a", "binary ns", "gray ns", "onehot ns");
  for (std::size_t n = 16; n <= 128; n *= 2) {
    auto measure = [&](synth::FsmEncoding enc) {
      auto nl = bench::incremental_fsm_netlist(n, enc, true);
      return core::measure_netlist(nl, lib);
    };
    const auto bin = measure(synth::FsmEncoding::Binary);
    const auto gray = measure(synth::FsmEncoding::Gray);
    const auto one = measure(synth::FsmEncoding::OneHot);
    std::printf("%8zu %12.0f %12.0f %12.0f %12.3f %12.3f %12.3f\n", n, bin.area_units,
                gray.area_units, one.area_units, bin.delay_ns, gray.delay_ns,
                one.delay_ns);
  }
  std::printf("\n");
}

void BM_TwoHotElaboration(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto build = core::build_srag_2d_for_trace(seq::incremental({dim, dim}));
    benchmark::DoNotOptimize(build.netlist.stats().num_cells);
  }
}
BENCHMARK(BM_TwoHotElaboration)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
